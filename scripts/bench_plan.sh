#!/usr/bin/env bash
# Forecast-query kernel microbench: naive slow paths vs the ForecastIndex
# kernels on the year-scale South Australia trace. Asserts bit-identical
# results per query, writes BENCH_plan_kernels.json at the repo root, and
# fails (exit 1) if any indexed kernel is slower than its naive
# counterpart or — outside quick mode — if the geometric-mean speedup
# misses the 5x target. Pass --quick (or set GAIA_BENCH_QUICK=1) for the
# CI smoke variant with small batches.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin plan_kernels

./target/release/plan_kernels "$@"
